//! Compressed Sparse Row matrices — the primary format of this workspace.
//!
//! The paper uses CSR for both inputs, the mask, and the output of every
//! push-based algorithm (Section 2.1). Rows store strictly increasing column
//! indices; all kernels rely on that invariant, which [`CsrMatrix::try_new`]
//! enforces.

use crate::error::SparseError;
use crate::index::{exclusive_prefix_sum, Idx, MAX_DIM};

/// A sparse matrix in Compressed Sparse Row format.
///
/// Invariants (checked by [`CsrMatrix::try_new`], assumed everywhere else):
/// * `rowptr.len() == nrows + 1`, `rowptr[0] == 0`, non-decreasing,
///   `rowptr[nrows] == colidx.len() == values.len()`;
/// * within each row, column indices are strictly increasing and `< ncols`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<Idx>,
    values: Vec<T>,
}

/// Validate CSR/CSC structural invariants. Shared by both formats
/// (`dim_major` = number of rows for CSR, columns for CSC).
pub(crate) fn validate_structure(
    dim_major: usize,
    dim_minor: usize,
    ptr: &[usize],
    idx: &[Idx],
    values_len: usize,
) -> Result<(), SparseError> {
    if dim_minor > MAX_DIM || dim_major > MAX_DIM {
        return Err(SparseError::DimensionTooLarge {
            dim: dim_minor.max(dim_major),
        });
    }
    if ptr.len() != dim_major + 1 {
        return Err(SparseError::RowPtrLength {
            expected: dim_major + 1,
            got: ptr.len(),
        });
    }
    if ptr[0] != 0 {
        return Err(SparseError::RowPtrStart);
    }
    for i in 0..dim_major {
        if ptr[i] > ptr[i + 1] {
            return Err(SparseError::RowPtrNotMonotone { row: i });
        }
    }
    if ptr[dim_major] != idx.len() {
        return Err(SparseError::RowPtrEnd {
            expected: idx.len(),
            got: ptr[dim_major],
        });
    }
    if values_len != idx.len() {
        return Err(SparseError::ValueLength {
            expected: idx.len(),
            got: values_len,
        });
    }
    for i in 0..dim_major {
        let row = &idx[ptr[i]..ptr[i + 1]];
        let mut prev: Option<Idx> = None;
        for &j in row {
            if (j as usize) >= dim_minor {
                return Err(SparseError::IndexOutOfRange {
                    row: i,
                    index: j,
                    dim: dim_minor,
                });
            }
            if let Some(p) = prev {
                if j <= p {
                    return Err(SparseError::UnsortedRow { row: i });
                }
            }
            prev = Some(j);
        }
    }
    Ok(())
}

impl<T> CsrMatrix<T> {
    /// Construct from raw parts, validating all structural invariants.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<Idx>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        validate_structure(nrows, ncols, &rowptr, &colidx, values.len())?;
        Ok(CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        })
    }

    /// Construct from raw parts without validation.
    ///
    /// The invariants are checked with `debug_assert!` in debug builds;
    /// violating them in release builds yields incorrect results (but no
    /// undefined behaviour — all kernels use checked or slice-bounded
    /// indexing).
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<Idx>,
        values: Vec<T>,
    ) -> Self {
        debug_assert!(
            validate_structure(nrows, ncols, &rowptr, &colidx, values.len()).is_ok(),
            "invalid CSR structure"
        );
        CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        }
    }

    /// An `nrows × ncols` matrix with no stored entries.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from an iterator of rows, each row a (sorted, strictly
    /// increasing) list of `(column, value)` pairs.
    pub fn from_rows<I, R>(nrows: usize, ncols: usize, rows: I) -> Result<Self, SparseError>
    where
        I: IntoIterator<Item = R>,
        R: IntoIterator<Item = (Idx, T)>,
    {
        let mut rowptr = Vec::with_capacity(nrows + 1);
        rowptr.push(0usize);
        let mut colidx = Vec::new();
        let mut values = Vec::new();
        for row in rows {
            for (j, v) in row {
                colidx.push(j);
                values.push(v);
            }
            rowptr.push(colidx.len());
        }
        if rowptr.len() != nrows + 1 {
            return Err(SparseError::RowPtrLength {
                expected: nrows + 1,
                got: rowptr.len(),
            });
        }
        Self::try_new(nrows, ncols, rowptr, colidx, values)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column indices of all stored entries, row-major.
    #[inline]
    pub fn colidx(&self) -> &[Idx] {
        &self.colidx
    }

    /// Values of all stored entries, row-major.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable values (pattern is immutable; values may be updated in place).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[Idx], &[T]) {
        let (s, e) = (self.rowptr[i], self.rowptr[i + 1]);
        (&self.colidx[s..e], &self.values[s..e])
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// Iterate over all stored entries as `(row, col, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Idx, &T)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, v)| (i, j, v))
        })
    }

    /// Value at `(i, j)` via binary search within the row, if stored.
    pub fn get(&self, i: usize, j: Idx) -> Option<&T> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|p| &vals[p])
    }

    /// Decompose into `(nrows, ncols, rowptr, colidx, values)`.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<Idx>, Vec<T>) {
        (
            self.nrows,
            self.ncols,
            self.rowptr,
            self.colidx,
            self.values,
        )
    }

    /// Apply `f` to every stored value, keeping the pattern.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> CsrMatrix<U> {
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr: self.rowptr.clone(),
            colidx: self.colidx.clone(),
            values: self.values.iter().map(&mut f).collect(),
        }
    }

    /// [`CsrMatrix::map`] taking values by copy — the cast primitive for
    /// converting a matrix between value lanes (`bool`/`i64`/`f64`)
    /// without touching the structure.
    pub fn map_values<U>(&self, mut f: impl FnMut(T) -> U) -> CsrMatrix<U>
    where
        T: Copy,
    {
        self.map(|&v| f(v))
    }

    /// Heap bytes of the structure alone (row pointers + column indices)
    /// — what a pattern-only matrix occupies, value lane excluded.
    pub fn structure_bytes(&self) -> usize {
        (self.nrows + 1) * std::mem::size_of::<usize>() + self.nnz() * std::mem::size_of::<Idx>()
    }

    /// Approximate heap bytes of this matrix, counting values at the
    /// *actual* stored width (`size_of::<T>()`: 1 for `bool`, 8 for
    /// `f64`/`i64`, 0 for `()` patterns) — the quantity byte-budgeted
    /// caches must charge so a boolean matrix is not billed at `f64`
    /// width.
    pub fn heap_bytes(&self) -> usize {
        self.structure_bytes() + self.nnz() * std::mem::size_of::<T>()
    }

    /// The pattern of this matrix with unit values.
    pub fn pattern(&self) -> CsrMatrix<()> {
        self.map(|_| ())
    }

    /// Keep only entries for which `keep(row, col, &value)` returns true.
    pub fn filter(&self, mut keep: impl FnMut(usize, Idx, &T) -> bool) -> CsrMatrix<T>
    where
        T: Clone,
    {
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        rowptr.push(0usize);
        let mut colidx = Vec::new();
        let mut values = Vec::new();
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, v) in cols.iter().zip(vals) {
                if keep(i, j, v) {
                    colidx.push(j);
                    values.push(v.clone());
                }
            }
            rowptr.push(colidx.len());
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colidx,
            values,
        }
    }

    /// Largest number of stored entries in any row (`0` for an empty
    /// matrix). Sizes hash/MCA accumulators; cached by `engine::Context`.
    pub fn max_row_nnz(&self) -> usize {
        self.rowptr
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    /// Number of rows with at least one stored entry.
    pub fn nonempty_rows(&self) -> usize {
        self.rowptr.windows(2).filter(|w| w[1] > w[0]).count()
    }

    /// Mean stored entries per row (0.0 for a matrix with no rows).
    pub fn avg_row_nnz(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// FNV-1a hash of the structure (shape, row pointers, column indices).
    ///
    /// A cheap identity check for caches layered above this crate: equal
    /// structures always hash equal; values are *not* hashed, so callers
    /// tracking numeric changes must compare values separately.
    pub fn structural_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |word: u64| {
            h ^= word;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(self.nrows as u64);
        mix(self.ncols as u64);
        for &p in &self.rowptr {
            mix(p as u64);
        }
        for &j in &self.colidx {
            mix(j as u64);
        }
        h
    }

    /// True if the two matrices have identical shape and pattern
    /// (ignores values).
    pub fn same_pattern<U>(&self, other: &CsrMatrix<U>) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.rowptr == other.rowptr
            && self.colidx == other.colidx
    }
}

impl<T: Clone> CsrMatrix<T> {
    /// Build from (possibly duplicated, unsorted) triplets; duplicates are
    /// combined with `combine`.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(Idx, Idx, T)],
        mut combine: impl FnMut(&T, &T) -> T,
    ) -> Result<Self, SparseError> {
        if nrows > MAX_DIM || ncols > MAX_DIM {
            return Err(SparseError::DimensionTooLarge {
                dim: nrows.max(ncols),
            });
        }
        for &(i, j, _) in triplets {
            if (i as usize) >= nrows || (j as usize) >= ncols {
                return Err(SparseError::IndexOutOfRange {
                    row: i as usize,
                    index: j,
                    dim: if (i as usize) >= nrows { nrows } else { ncols },
                });
            }
        }
        // Counting sort by row, then sort each row by column and combine
        // duplicates.
        let mut counts = vec![0usize; nrows + 1];
        for &(i, _, _) in triplets {
            counts[i as usize] += 1;
        }
        let total = exclusive_prefix_sum(&mut counts[..nrows]);
        counts[nrows] = total;
        let rowstart = counts; // exclusive offsets per row, last = nnz
        let mut cursor = rowstart.clone();
        let mut cols: Vec<Idx> = vec![0; total];
        let mut vals: Vec<Option<T>> = vec![None; total];
        for (i, j, v) in triplets {
            let p = cursor[*i as usize];
            cols[p] = *j;
            vals[p] = Some(v.clone());
            cursor[*i as usize] += 1;
        }
        let mut rowptr = Vec::with_capacity(nrows + 1);
        rowptr.push(0usize);
        let mut colidx: Vec<Idx> = Vec::with_capacity(total);
        let mut values: Vec<T> = Vec::with_capacity(total);
        let mut scratch: Vec<(Idx, T)> = Vec::new();
        for i in 0..nrows {
            scratch.clear();
            for p in rowstart[i]..rowstart[i + 1] {
                scratch.push((cols[p], vals[p].take().expect("filled above")));
            }
            scratch.sort_unstable_by_key(|&(j, _)| j);
            for (j, v) in scratch.drain(..) {
                if let Some(&last_j) = colidx.last() {
                    if colidx.len() > rowptr[i] && last_j == j {
                        let lv = values.last_mut().expect("nonempty");
                        *lv = combine(lv, &v);
                        continue;
                    }
                }
                colidx.push(j);
                values.push(v);
            }
            rowptr.push(colidx.len());
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        })
    }

    /// The `n × n` identity-pattern matrix with `value` on the diagonal.
    pub fn diagonal(n: usize, value: T) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect(),
            colidx: (0..n as Idx).collect(),
            values: vec![value; n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix<f64> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let m = small();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row(2), (&[0u32, 1][..], &[3.0, 4.0][..]));
        assert_eq!(m.get(0, 2), Some(&2.0));
        assert_eq!(m.get(0, 1), None);
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = small();
        let entries: Vec<(usize, Idx, f64)> = m.iter().map(|(i, j, &v)| (i, j, v)).collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn validation_rejects_bad_rowptr_len() {
        let err = CsrMatrix::<f64>::try_new(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::RowPtrLength { .. }));
    }

    #[test]
    fn validation_rejects_nonmonotone() {
        let err = CsrMatrix::<f64>::try_new(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::RowPtrNotMonotone { .. }));
    }

    #[test]
    fn validation_rejects_bad_start() {
        let err = CsrMatrix::<f64>::try_new(1, 2, vec![1, 1], vec![], vec![]).unwrap_err();
        assert!(matches!(err, SparseError::RowPtrStart));
    }

    #[test]
    fn validation_rejects_bad_end() {
        let err = CsrMatrix::<f64>::try_new(1, 2, vec![0, 2], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::RowPtrEnd { .. }));
    }

    #[test]
    fn validation_rejects_out_of_range_index() {
        let err = CsrMatrix::<f64>::try_new(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfRange { .. }));
    }

    #[test]
    fn validation_rejects_unsorted_and_duplicate() {
        let err =
            CsrMatrix::<f64>::try_new(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::UnsortedRow { .. }));
        let err =
            CsrMatrix::<f64>::try_new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::UnsortedRow { .. }));
    }

    #[test]
    fn validation_rejects_value_len_mismatch() {
        let err = CsrMatrix::<f64>::try_new(1, 3, vec![0, 1], vec![1], vec![]).unwrap_err();
        assert!(matches!(err, SparseError::ValueLength { .. }));
    }

    #[test]
    fn from_triplets_sorts_and_combines() {
        let t = vec![
            (2u32, 1u32, 4.0f64),
            (0, 2, 2.0),
            (2, 0, 3.0),
            (0, 0, 1.0),
            (0, 2, 10.0), // duplicate, combined by +
        ];
        let m = CsrMatrix::from_triplets(3, 3, &t, |a, b| a + b).unwrap();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 2), Some(&12.0));
        assert_eq!(m.get(2, 1), Some(&4.0));
        // rows sorted
        for i in 0..3 {
            let (cols, _) = m.row(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn from_triplets_rejects_out_of_range() {
        let t = vec![(5u32, 0u32, 1.0f64)];
        assert!(CsrMatrix::from_triplets(3, 3, &t, |a, _| *a).is_err());
    }

    #[test]
    fn from_rows_builder() {
        let m = CsrMatrix::from_rows(2, 4, vec![vec![(0u32, 1i64), (3, 2)], vec![]]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.get(0, 3), Some(&2));
    }

    #[test]
    fn filter_keeps_subset() {
        let m = small();
        let f = m.filter(|_, _, &v| v > 2.0);
        assert_eq!(f.nnz(), 2);
        assert_eq!(f.get(2, 0), Some(&3.0));
        assert_eq!(f.get(0, 0), None);
    }

    #[test]
    fn map_and_pattern() {
        let m = small();
        let doubled = m.map(|&v| v * 2.0);
        assert!(m.same_pattern(&doubled));
        assert_eq!(doubled.get(2, 1), Some(&8.0));
        let p = m.pattern();
        assert!(m.same_pattern(&p));
    }

    #[test]
    fn diagonal_matrix() {
        let d = CsrMatrix::diagonal(3, 7u32);
        assert_eq!(d.nnz(), 3);
        assert_eq!(d.get(1, 1), Some(&7));
        assert_eq!(d.get(0, 1), None);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::<f32>::empty(4, 2);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (4, 2));
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn row_statistics() {
        let m = small();
        assert_eq!(m.max_row_nnz(), 2);
        assert_eq!(m.nonempty_rows(), 2);
        assert!((m.avg_row_nnz() - 4.0 / 3.0).abs() < 1e-12);
        let e = CsrMatrix::<f64>::empty(0, 0);
        assert_eq!(e.max_row_nnz(), 0);
        assert_eq!(e.avg_row_nnz(), 0.0);
    }

    #[test]
    fn fingerprint_tracks_structure_not_values() {
        let m = small();
        assert_eq!(m.structural_fingerprint(), m.structural_fingerprint());
        // Same pattern, different values: same fingerprint.
        assert_eq!(
            m.structural_fingerprint(),
            m.map(|v| v * 2.0).structural_fingerprint()
        );
        // Different pattern: different fingerprint.
        let other = m.filter(|_, _, &v| v > 1.0);
        assert_ne!(m.structural_fingerprint(), other.structural_fingerprint());
        // Shape is part of the identity.
        let a = CsrMatrix::<f64>::empty(2, 3);
        let b = CsrMatrix::<f64>::empty(3, 2);
        assert_ne!(a.structural_fingerprint(), b.structural_fingerprint());
    }
}
