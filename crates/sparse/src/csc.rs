//! Compressed Sparse Column matrices.
//!
//! Used by the pull-based `Inner` algorithm (Section 4.1): `A` is traversed
//! row-major (CSR) and `B` column-major (CSC), so each masked dot product
//! walks two sorted index streams.

use crate::csr::{validate_structure, CsrMatrix};
use crate::error::SparseError;
use crate::index::Idx;

/// A sparse matrix in Compressed Sparse Column format.
///
/// Same invariants as [`CsrMatrix`] with rows and columns exchanged:
/// `colptr.len() == ncols + 1` and row indices within each column are
/// strictly increasing.
#[derive(Clone, Debug, PartialEq)]
pub struct CscMatrix<T> {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<Idx>,
    values: Vec<T>,
}

impl<T> CscMatrix<T> {
    /// Construct from raw parts, validating all structural invariants.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<Idx>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        validate_structure(ncols, nrows, &colptr, &rowidx, values.len())?;
        Ok(CscMatrix {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        })
    }

    /// Construct from raw parts without validation (checked in debug builds).
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<Idx>,
        values: Vec<T>,
    ) -> Self {
        debug_assert!(
            validate_structure(ncols, nrows, &colptr, &rowidx, values.len()).is_ok(),
            "invalid CSC structure"
        );
        CscMatrix {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Heap bytes of the structure alone (column pointers + row indices).
    pub fn structure_bytes(&self) -> usize {
        (self.ncols + 1) * std::mem::size_of::<usize>() + self.nnz() * std::mem::size_of::<Idx>()
    }

    /// Approximate heap bytes, counting values at the actual stored width
    /// (see [`CsrMatrix::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.structure_bytes() + self.nnz() * std::mem::size_of::<T>()
    }

    /// Column pointer array (`ncols + 1` entries).
    #[inline]
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row indices of all stored entries, column-major.
    #[inline]
    pub fn rowidx(&self) -> &[Idx] {
        &self.rowidx
    }

    /// Values of all stored entries, column-major.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Row indices and values of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[Idx], &[T]) {
        let (s, e) = (self.colptr[j], self.colptr[j + 1]);
        (&self.rowidx[s..e], &self.values[s..e])
    }

    /// Number of stored entries in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.colptr[j + 1] - self.colptr[j]
    }

    /// Iterate over all stored entries as `(row, col, &value)`, column-major.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, usize, &T)> + '_ {
        (0..self.ncols).flat_map(move |j| {
            let (rows, vals) = self.col(j);
            rows.iter().zip(vals).map(move |(&i, v)| (i, j, v))
        })
    }
}

impl<T: Clone> CscMatrix<T> {
    /// Convert a CSR matrix to CSC (a transpose-copy; `O(nnz + dims)`).
    pub fn from_csr(a: &CsrMatrix<T>) -> Self {
        let (nrows, ncols) = a.shape();
        let nnz = a.nnz();
        let mut colptr = vec![0usize; ncols + 1];
        for &j in a.colidx() {
            colptr[j as usize + 1] += 1;
        }
        for j in 0..ncols {
            colptr[j + 1] += colptr[j];
        }
        let mut cursor = colptr.clone();
        let mut rowidx: Vec<Idx> = vec![0; nnz];
        let mut values: Vec<Option<T>> = vec![None; nnz];
        for i in 0..nrows {
            let (cols, vals) = a.row(i);
            for (&j, v) in cols.iter().zip(vals) {
                let p = cursor[j as usize];
                rowidx[p] = i as Idx;
                values[p] = Some(v.clone());
                cursor[j as usize] += 1;
            }
        }
        let values: Vec<T> = values
            .into_iter()
            .map(|v| v.expect("every slot written"))
            .collect();
        // Row-major traversal fills each column in increasing row order, so
        // the CSC invariant holds by construction.
        CscMatrix {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        }
    }

    /// Convert to CSR (transpose-copy back).
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let nnz = self.nnz();
        let mut rowptr = vec![0usize; self.nrows + 1];
        for &i in &self.rowidx {
            rowptr[i as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut cursor = rowptr.clone();
        let mut colidx: Vec<Idx> = vec![0; nnz];
        let mut values: Vec<Option<T>> = vec![None; nnz];
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&i, v) in rows.iter().zip(vals) {
                let p = cursor[i as usize];
                colidx[p] = j as Idx;
                values[p] = Some(v.clone());
                cursor[i as usize] += 1;
            }
        }
        let values: Vec<T> = values
            .into_iter()
            .map(|v| v.expect("every slot written"))
            .collect();
        CsrMatrix::from_parts_unchecked(self.nrows, self.ncols, rowptr, colidx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_csr() -> CsrMatrix<f64> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn csr_to_csc_roundtrip() {
        let a = small_csr();
        let c = CscMatrix::from_csr(&a);
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.col(0), (&[0u32, 2][..], &[1.0, 3.0][..]));
        assert_eq!(c.col(1), (&[2u32][..], &[4.0][..]));
        assert_eq!(c.col(2), (&[0u32][..], &[2.0][..]));
        let back = c.to_csr();
        assert_eq!(back, a);
    }

    #[test]
    fn rectangular_roundtrip() {
        // 2x4 matrix
        let a =
            CsrMatrix::try_new(2, 4, vec![0, 3, 4], vec![0, 1, 3, 2], vec![1, 2, 3, 4]).unwrap();
        let c = CscMatrix::from_csr(&a);
        assert_eq!(c.shape(), (2, 4));
        assert_eq!(c.col_nnz(0), 1);
        assert_eq!(c.col_nnz(2), 1);
        assert_eq!(c.to_csr(), a);
    }

    #[test]
    fn csc_iter_column_major() {
        let a = small_csr();
        let c = CscMatrix::from_csr(&a);
        let entries: Vec<(Idx, usize, f64)> = c.iter().map(|(i, j, &v)| (i, j, v)).collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (2, 0, 3.0), (2, 1, 4.0), (0, 2, 2.0)]
        );
    }

    #[test]
    fn csc_validation() {
        assert!(CscMatrix::<f64>::try_new(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(
            CscMatrix::<f64>::try_new(2, 2, vec![0, 1, 2], vec![0, 3], vec![1.0, 2.0]).is_err()
        );
    }

    #[test]
    fn empty_columns() {
        let a = CsrMatrix::<i32>::empty(3, 5);
        let c = CscMatrix::from_csr(&a);
        assert_eq!(c.nnz(), 0);
        for j in 0..5 {
            assert_eq!(c.col_nnz(j), 0);
        }
    }
}
