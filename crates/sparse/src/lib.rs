#![warn(missing_docs)]

//! Sparse matrix substrate for the Masked SpGEMM reproduction.
//!
//! This crate provides the storage formats and elementary kernels the paper's
//! algorithms are built on: CSR/CSC/COO matrices, semiring abstraction,
//! conversions, transpose, triangular extraction, element-wise operations,
//! reductions, permutations, and Matrix Market I/O.
//!
//! Indices are `u32` ([`Idx`]), row pointers are `usize`, values are generic.
//! All structural invariants (monotone row pointers, in-range and per-row
//! sorted column indices) are enforced at construction time by
//! [`CsrMatrix::try_new`] and friends; kernels may then rely on them.

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dcsr;
pub mod degree;
pub mod dense;
pub mod error;
pub mod ewise;
pub mod index;
pub mod io;
pub mod permute;
pub mod reduce;
pub mod semiring;
pub mod spmv;
pub mod spvec;
pub mod transpose;
pub mod triangular;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dcsr::DcsrMatrix;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use index::Idx;
pub use semiring::{BoolAndOr, MinPlus, PlusFirst, PlusPair, PlusSecond, PlusTimes, Semiring};
pub use spvec::SparseVec;
