//! Coordinate-format matrices, mainly as an ingestion format
//! (Matrix Market files, graph generators emit edges as triplets).

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::index::{Idx, MAX_DIM};

/// A sparse matrix as a list of `(row, col, value)` triplets.
///
/// Triplets may be unsorted and may contain duplicates; converting to CSR
/// sorts and combines them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CooMatrix<T> {
    nrows: usize,
    ncols: usize,
    triplets: Vec<(Idx, Idx, T)>,
}

impl<T> CooMatrix<T> {
    /// An empty `nrows × ncols` COO matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(
            nrows <= MAX_DIM && ncols <= MAX_DIM,
            "dimension exceeds u32 index space"
        );
        CooMatrix {
            nrows,
            ncols,
            triplets: Vec::new(),
        }
    }

    /// Append a triplet. Panics if out of range (generator-side bug).
    #[inline]
    pub fn push(&mut self, i: Idx, j: Idx, v: T) {
        assert!(
            (i as usize) < self.nrows && (j as usize) < self.ncols,
            "triplet ({i},{j}) out of range {}x{}",
            self.nrows,
            self.ncols
        );
        self.triplets.push((i, j, v));
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (before duplicate combination).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.triplets.len()
    }

    /// The raw triplets.
    #[inline]
    pub fn triplets(&self) -> &[(Idx, Idx, T)] {
        &self.triplets
    }

    /// Reserve capacity for `additional` more triplets.
    pub fn reserve(&mut self, additional: usize) {
        self.triplets.reserve(additional);
    }
}

impl<T: Clone> CooMatrix<T> {
    /// Build from an existing triplet list.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: Vec<(Idx, Idx, T)>,
    ) -> Result<Self, SparseError> {
        if nrows > MAX_DIM || ncols > MAX_DIM {
            return Err(SparseError::DimensionTooLarge {
                dim: nrows.max(ncols),
            });
        }
        for &(i, j, _) in &triplets {
            if (i as usize) >= nrows || (j as usize) >= ncols {
                return Err(SparseError::IndexOutOfRange {
                    row: i as usize,
                    index: j,
                    dim: if (i as usize) >= nrows { nrows } else { ncols },
                });
            }
        }
        Ok(CooMatrix {
            nrows,
            ncols,
            triplets,
        })
    }

    /// Convert to CSR, combining duplicate entries with `combine`.
    pub fn to_csr_with(&self, combine: impl FnMut(&T, &T) -> T) -> CsrMatrix<T> {
        CsrMatrix::from_triplets(self.nrows, self.ncols, &self.triplets, combine)
            .expect("COO invariants guarantee in-range triplets")
    }

    /// Convert to CSR, keeping the last value among duplicates.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        self.to_csr_with(|_, b| b.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_convert() {
        let mut c = CooMatrix::new(3, 3);
        c.push(2, 1, 4.0);
        c.push(0, 0, 1.0);
        c.push(0, 2, 2.0);
        c.push(2, 0, 3.0);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), Some(&1.0));
        assert_eq!(m.get(2, 1), Some(&4.0));
    }

    #[test]
    fn duplicates_combined() {
        let c =
            CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 5.0), (1, 1, 2.0)]).unwrap();
        let m = c.to_csr_with(|a, b| a + b);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), Some(&6.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let mut c = CooMatrix::new(2, 2);
        c.push(2, 0, 1.0);
    }

    #[test]
    fn from_triplets_validates() {
        assert!(CooMatrix::from_triplets(2, 2, vec![(0u32, 9u32, 1.0)]).is_err());
    }

    #[test]
    fn empty_to_csr() {
        let c = CooMatrix::<f32>::new(4, 4);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (4, 4));
    }
}
