//! Reductions over stored values.
//!
//! Triangle counting finishes with a full reduction `sum(C)`; k-truss uses
//! per-row reductions for support statistics.

use rayon::prelude::*;

use crate::csr::CsrMatrix;

/// Reduce all stored values with a commutative, associative `op`, starting
/// from `init` per partition (`init` must be the identity of `op`).
pub fn reduce_all<T, F>(a: &CsrMatrix<T>, init: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync + Send,
{
    a.values().par_iter().copied().reduce(|| init, op)
}

/// Sum of all stored values (arithmetic).
pub fn sum_all<T>(a: &CsrMatrix<T>) -> T
where
    T: Copy + Send + Sync + std::ops::Add<Output = T> + Default,
{
    reduce_all(a, T::default(), |x, y| x + y)
}

/// Per-row reduction: `out[i] = fold(op, init, values in row i)`.
pub fn reduce_rows<T, F>(a: &CsrMatrix<T>, init: T, op: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let (_, vals) = a.row(i);
            vals.iter().fold(init, |acc, &v| op(acc, v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CsrMatrix<i64> {
        CsrMatrix::try_new(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1, 2, 3, 4]).unwrap()
    }

    #[test]
    fn sum() {
        assert_eq!(sum_all(&m()), 10);
    }

    #[test]
    fn max_reduce() {
        assert_eq!(reduce_all(&m(), i64::MIN, |x, y| x.max(y)), 4);
    }

    #[test]
    fn row_sums() {
        assert_eq!(reduce_rows(&m(), 0, |x, y| x + y), vec![3, 0, 7]);
    }

    #[test]
    fn empty_sum_is_default() {
        let e = CsrMatrix::<i64>::empty(2, 2);
        assert_eq!(sum_all(&e), 0);
    }
}
