//! Degree utilities for graph matrices.

use crate::csr::CsrMatrix;
use crate::index::Idx;

/// Out-degree of every row (`nnz` per row).
pub fn row_degrees<T>(a: &CsrMatrix<T>) -> Vec<usize> {
    (0..a.nrows()).map(|i| a.row_nnz(i)).collect()
}

/// Permutation that sorts vertices by non-increasing degree (ties broken by
/// vertex id for determinism). `perm[new] = old`.
///
/// The triangle-counting benchmark relabels vertices this way before taking
/// the lower-triangular part (Section 8.2, citing \[29\]).
pub fn degree_sort_perm<T>(a: &CsrMatrix<T>) -> Vec<Idx> {
    let deg = row_degrees(a);
    let mut perm: Vec<Idx> = (0..a.nrows() as Idx).collect();
    perm.sort_by(|&x, &y| {
        deg[y as usize]
            .cmp(&deg[x as usize])
            .then_with(|| x.cmp(&y))
    });
    perm
}

/// Invert a permutation given as `perm[new] = old` into `inv[old] = new`.
pub fn invert_perm(perm: &[Idx]) -> Vec<Idx> {
    let mut inv = vec![0 as Idx; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inv[old as usize] = new as Idx;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees() {
        let a = CsrMatrix::try_new(3, 3, vec![0, 2, 2, 3], vec![0, 1, 2], vec![1u8; 3]).unwrap();
        assert_eq!(row_degrees(&a), vec![2, 0, 1]);
    }

    #[test]
    fn degree_sort_non_increasing_with_stable_ties() {
        let a = CsrMatrix::try_new(
            4,
            4,
            vec![0, 1, 3, 4, 6],
            vec![0, 0, 1, 0, 0, 1],
            vec![1u8; 6],
        )
        .unwrap();
        // degrees: [1, 2, 1, 2] -> order: 1, 3 (deg 2, tie by id), 0, 2
        assert_eq!(degree_sort_perm(&a), vec![1, 3, 0, 2]);
    }

    #[test]
    fn perm_inversion() {
        let p = vec![2u32, 0, 1];
        let inv = invert_perm(&p);
        assert_eq!(inv, vec![1, 2, 0]);
        for (new, &old) in p.iter().enumerate() {
            assert_eq!(inv[old as usize] as usize, new);
        }
    }
}
