//! Sparse vectors — the `u`, `m`, `v` of the paper's Masked SpGEVM framing
//! (Section 5 describes every algorithm as a masked sparse vector-matrix
//! product; `masked_spgemm::spgevm` exposes that operation directly, e.g.
//! for frontier-based traversals).

use crate::error::SparseError;
use crate::index::{Idx, MAX_DIM};

/// A sparse vector: sorted indices + values, with an explicit dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVec<T> {
    dim: usize,
    idx: Vec<Idx>,
    vals: Vec<T>,
}

impl<T> SparseVec<T> {
    /// Construct from sorted parts, validating the invariants
    /// (strictly increasing, in-range indices; matching lengths).
    pub fn try_new(dim: usize, idx: Vec<Idx>, vals: Vec<T>) -> Result<Self, SparseError> {
        if dim > MAX_DIM {
            return Err(SparseError::DimensionTooLarge { dim });
        }
        if idx.len() != vals.len() {
            return Err(SparseError::ValueLength {
                expected: idx.len(),
                got: vals.len(),
            });
        }
        let mut prev: Option<Idx> = None;
        for &j in &idx {
            if (j as usize) >= dim {
                return Err(SparseError::IndexOutOfRange {
                    row: 0,
                    index: j,
                    dim,
                });
            }
            if let Some(p) = prev {
                if j <= p {
                    return Err(SparseError::UnsortedRow { row: 0 });
                }
            }
            prev = Some(j);
        }
        Ok(SparseVec { dim, idx, vals })
    }

    /// The empty vector of the given dimension.
    pub fn empty(dim: usize) -> Self {
        SparseVec {
            dim,
            idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Dimension (number of addressable positions).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// True when no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Sorted indices of stored entries.
    #[inline]
    pub fn indices(&self) -> &[Idx] {
        &self.idx
    }

    /// Values of stored entries (parallel to [`SparseVec::indices`]).
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Value at `j` via binary search.
    pub fn get(&self, j: Idx) -> Option<&T> {
        self.idx.binary_search(&j).ok().map(|p| &self.vals[p])
    }

    /// Iterate `(index, &value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, &T)> + '_ {
        self.idx.iter().copied().zip(self.vals.iter())
    }

    /// Pattern-only copy.
    pub fn pattern(&self) -> SparseVec<()> {
        SparseVec {
            dim: self.dim,
            idx: self.idx.clone(),
            vals: vec![(); self.idx.len()],
        }
    }

    /// Decompose into `(dim, indices, values)`.
    pub fn into_parts(self) -> (usize, Vec<Idx>, Vec<T>) {
        (self.dim, self.idx, self.vals)
    }

    /// Map values, keeping the pattern.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> SparseVec<U> {
        SparseVec {
            dim: self.dim,
            idx: self.idx.clone(),
            vals: self.vals.iter().map(f).collect(),
        }
    }
}

impl<T: Copy> SparseVec<T> {
    /// Sorted-merge union: entries present in either input. Values present
    /// in both are combined with `both`; single-sided values are copied.
    /// This is the accumulation primitive frontier-style workloads use to
    /// fold a fresh product into a running vector (`visited`, distances).
    ///
    /// ```
    /// use sparse::SparseVec;
    /// let a = SparseVec::try_new(6, vec![0, 3], vec![5i64, 9]).unwrap();
    /// let b = SparseVec::try_new(6, vec![3, 4], vec![2i64, 7]).unwrap();
    /// let m = a.union_with(&b, |x, y| x.min(y));
    /// assert_eq!(m.indices(), &[0, 3, 4]);
    /// assert_eq!(m.values(), &[5, 2, 7]);
    /// ```
    pub fn union_with(&self, other: &SparseVec<T>, both: impl Fn(T, T) -> T) -> SparseVec<T> {
        assert_eq!(self.dim, other.dim, "union_with dimension mismatch");
        let mut idx = Vec::with_capacity(self.idx.len() + other.idx.len());
        let mut vals = Vec::with_capacity(self.idx.len() + other.idx.len());
        let (mut p, mut q) = (0usize, 0usize);
        while p < self.idx.len() || q < other.idx.len() {
            if q >= other.idx.len() || (p < self.idx.len() && self.idx[p] < other.idx[q]) {
                idx.push(self.idx[p]);
                vals.push(self.vals[p]);
                p += 1;
            } else if p >= self.idx.len() || other.idx[q] < self.idx[p] {
                idx.push(other.idx[q]);
                vals.push(other.vals[q]);
                q += 1;
            } else {
                idx.push(self.idx[p]);
                vals.push(both(self.vals[p], other.vals[q]));
                p += 1;
                q += 1;
            }
        }
        SparseVec {
            dim: self.dim,
            idx,
            vals,
        }
    }
}

impl<T: Clone> SparseVec<T> {
    /// Build from unsorted `(index, value)` pairs; duplicates combined with
    /// `combine`.
    pub fn from_pairs(
        dim: usize,
        mut pairs: Vec<(Idx, T)>,
        combine: impl Fn(&T, &T) -> T,
    ) -> Result<Self, SparseError> {
        pairs.sort_by_key(|&(j, _)| j);
        let mut idx: Vec<Idx> = Vec::with_capacity(pairs.len());
        let mut vals: Vec<T> = Vec::with_capacity(pairs.len());
        for (j, v) in pairs {
            if Some(&j) == idx.last() {
                let lv = vals.last_mut().expect("nonempty");
                *lv = combine(lv, &v);
            } else {
                idx.push(j);
                vals.push(v);
            }
        }
        SparseVec::try_new(dim, idx, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = SparseVec::try_new(10, vec![1, 4, 7], vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(v.dim(), 10);
        assert_eq!(v.nnz(), 3);
        assert_eq!(v.get(4), Some(&2.0));
        assert_eq!(v.get(5), None);
        let pairs: Vec<(Idx, f64)> = v.iter().map(|(j, &x)| (j, x)).collect();
        assert_eq!(pairs, vec![(1, 1.0), (4, 2.0), (7, 3.0)]);
    }

    #[test]
    fn validation() {
        assert!(SparseVec::try_new(3, vec![0, 5], vec![1, 2]).is_err()); // range
        assert!(SparseVec::try_new(5, vec![2, 1], vec![1, 2]).is_err()); // order
        assert!(SparseVec::try_new(5, vec![2, 2], vec![1, 2]).is_err()); // dup
        assert!(SparseVec::try_new(5, vec![2], vec![1, 2]).is_err()); // len
    }

    #[test]
    fn from_pairs_sorts_and_combines() {
        let v =
            SparseVec::from_pairs(8, vec![(5, 1.0), (2, 2.0), (5, 10.0)], |a, b| a + b).unwrap();
        assert_eq!(v.indices(), &[2, 5]);
        assert_eq!(v.values(), &[2.0, 11.0]);
    }

    #[test]
    fn union_with_merges_and_combines() {
        let a = SparseVec::try_new(8, vec![1, 4, 6], vec![1.0, 2.0, 3.0]).unwrap();
        let b = SparseVec::try_new(8, vec![0, 4], vec![9.0, 5.0]).unwrap();
        let u = a.union_with(&b, |x, y| x + y);
        assert_eq!(u.indices(), &[0, 1, 4, 6]);
        assert_eq!(u.values(), &[9.0, 1.0, 7.0, 3.0]);
        let empty = SparseVec::<f64>::empty(8);
        assert_eq!(a.union_with(&empty, |x, _| x), a);
        assert_eq!(empty.union_with(&a, |x, _| x), a);
    }

    #[test]
    fn map_keeps_pattern() {
        let v = SparseVec::try_new(5, vec![1, 3], vec![2.0, -1.0]).unwrap();
        let m = v.map(|&x| x != 0.0);
        assert_eq!(m.indices(), v.indices());
        assert_eq!(m.values(), &[true, true]);
    }

    #[test]
    fn empty_and_pattern() {
        let e = SparseVec::<f64>::empty(4);
        assert!(e.is_empty());
        let v = SparseVec::try_new(4, vec![3], vec![9.0]).unwrap();
        assert_eq!(v.pattern().indices(), &[3]);
    }
}
