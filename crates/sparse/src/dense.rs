//! A minimal dense matrix, used as the oracle in tests and for
//! reference (naïve) masked multiplication.
//!
//! Dense storage is row-major `Vec<Option<T>>`: `None` models "no stored
//! entry", distinguishing structural zeros from explicit numeric zeros the
//! way GraphBLAS does.

use crate::csr::CsrMatrix;
use crate::index::Idx;
use crate::semiring::Semiring;

/// Row-major dense matrix over `Option<T>` (None = no entry).
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix<T> {
    nrows: usize,
    ncols: usize,
    data: Vec<Option<T>>,
}

impl<T: Copy> DenseMatrix<T> {
    /// An all-empty matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![None; nrows * ncols],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Entry at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Option<T> {
        self.data[i * self.ncols + j]
    }

    /// Set entry at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Option<T>) {
        self.data[i * self.ncols + j] = v;
    }

    /// Number of present entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| v.is_some()).count()
    }

    /// Expand a CSR matrix to dense.
    pub fn from_csr(a: &CsrMatrix<T>) -> Self {
        let mut d = DenseMatrix::new(a.nrows(), a.ncols());
        for (i, j, &v) in a.iter() {
            d.set(i, j as usize, Some(v));
        }
        d
    }

    /// Collapse to CSR (present entries only, rows sorted by construction).
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        rowptr.push(0usize);
        let mut colidx: Vec<Idx> = Vec::new();
        let mut values: Vec<T> = Vec::new();
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                if let Some(v) = self.get(i, j) {
                    colidx.push(j as Idx);
                    values.push(v);
                }
            }
            rowptr.push(colidx.len());
        }
        CsrMatrix::from_parts_unchecked(self.nrows, self.ncols, rowptr, colidx, values)
    }
}

/// Reference masked SpGEMM: `C = M ⊙ (A·B)` (or `¬M ⊙ (A·B)` when
/// `complemented`), computed entry-by-entry with triple loops.
///
/// This is the oracle every parallel algorithm is tested against. Products
/// contributing to one output entry are combined in increasing `k`, matching
/// the deterministic order of all kernels.
pub fn reference_masked_spgemm<S, MT>(
    semiring: S,
    mask: &CsrMatrix<MT>,
    complemented: bool,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
) -> CsrMatrix<S::C>
where
    S: Semiring,
    MT: Copy,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    assert_eq!(mask.nrows(), a.nrows(), "mask row mismatch");
    assert_eq!(mask.ncols(), b.ncols(), "mask col mismatch");
    let da = DenseMatrix::from_csr(a);
    let db = DenseMatrix::from_csr(b);
    let dm = DenseMatrix::from_csr(mask);
    let mut out = DenseMatrix::<S::C>::new(a.nrows(), b.ncols());
    for i in 0..a.nrows() {
        for j in 0..b.ncols() {
            let in_mask = dm.get(i, j).is_some();
            if in_mask == complemented {
                continue;
            }
            let mut acc: Option<S::C> = None;
            for k in 0..a.ncols() {
                if let (Some(av), Some(bv)) = (da.get(i, k), db.get(k, j)) {
                    let p = semiring.mul(av, bv);
                    acc = Some(match acc {
                        None => p,
                        Some(x) => semiring.add(x, p),
                    });
                }
            }
            out.set(i, j, acc);
        }
    }
    out.to_csr()
}

/// Reference plain (unmasked) SpGEMM, for baseline validation.
pub fn reference_spgemm<S>(semiring: S, a: &CsrMatrix<S::A>, b: &CsrMatrix<S::B>) -> CsrMatrix<S::C>
where
    S: Semiring,
{
    // Build an all-ones mask and reuse the masked reference.
    let nrows = a.nrows();
    let ncols = b.ncols();
    let mut m = DenseMatrix::<()>::new(nrows, ncols);
    for i in 0..nrows {
        for j in 0..ncols {
            m.set(i, j, Some(()));
        }
    }
    reference_masked_spgemm(semiring, &m.to_csr(), false, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{PlusPair, PlusTimes};

    fn a() -> CsrMatrix<f64> {
        // [1 2]
        // [0 3]
        CsrMatrix::try_new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 2.0, 3.0]).unwrap()
    }

    fn b() -> CsrMatrix<f64> {
        // [4 0]
        // [5 6]
        CsrMatrix::try_new(2, 2, vec![0, 1, 3], vec![0, 0, 1], vec![4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn dense_roundtrip() {
        let m = a();
        let d = DenseMatrix::from_csr(&m);
        assert_eq!(d.nnz(), 3);
        assert_eq!(d.to_csr(), m);
    }

    #[test]
    fn reference_full_product() {
        // A*B = [14 12; 15 18]
        let c = reference_spgemm(PlusTimes::<f64>::new(), &a(), &b());
        assert_eq!(c.get(0, 0), Some(&14.0));
        assert_eq!(c.get(0, 1), Some(&12.0));
        assert_eq!(c.get(1, 0), Some(&15.0));
        assert_eq!(c.get(1, 1), Some(&18.0));
    }

    #[test]
    fn reference_masked_keeps_only_mask_entries() {
        // mask = {(0,1), (1,0)}
        let m = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![(), ()]).unwrap();
        let c = reference_masked_spgemm(PlusTimes::<f64>::new(), &m, false, &a(), &b());
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 1), Some(&12.0));
        assert_eq!(c.get(1, 0), Some(&15.0));
    }

    #[test]
    fn reference_complemented_mask() {
        let m = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![(), ()]).unwrap();
        let c = reference_masked_spgemm(PlusTimes::<f64>::new(), &m, true, &a(), &b());
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 0), Some(&14.0));
        assert_eq!(c.get(1, 1), Some(&18.0));
    }

    #[test]
    fn mask_entry_without_product_produces_no_output() {
        // A row 1 has only column 1; kill B row 1 so (1,0) gets no product.
        let b2 = CsrMatrix::try_new(2, 2, vec![0, 1, 1], vec![0], vec![4.0]).unwrap();
        let m = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![(), ()]).unwrap();
        let c = reference_masked_spgemm(PlusTimes::<f64>::new(), &m, false, &a(), &b2);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn reference_plus_pair_counts_intersections() {
        let m = CsrMatrix::try_new(2, 2, vec![0, 2, 4], vec![0, 1, 0, 1], vec![(); 4]).unwrap();
        let c = reference_masked_spgemm(PlusPair::<f64, f64, u32>::new(), &m, false, &a(), &b());
        // row0 of A has cols {0,1}; col0 of B has rows {0,1} -> 2 pairs
        assert_eq!(c.get(0, 0), Some(&2));
        assert_eq!(c.get(1, 0), Some(&1));
    }
}
