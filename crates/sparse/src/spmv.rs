//! Sparse matrix-vector products, plain and masked.
//!
//! Masking was first applied to SpMV (paper Section 4, citing the
//! direction-optimized traversal of Yang et al.): with a dense input
//! vector, `y = m ⊙ (A·x)` computes only the masked rows' dot products —
//! the SpMV analogue of the pull-based `Inner`.

use rayon::prelude::*;

use crate::csr::CsrMatrix;
use crate::semiring::Semiring;
use crate::spvec::SparseVec;

/// Plain SpMV `y = A·x` with a dense input vector; rows with no products
/// yield `None`.
pub fn spmv<S>(sr: S, a: &CsrMatrix<S::A>, x: &[S::B]) -> Vec<Option<S::C>>
where
    S: Semiring,
    S::C: Send,
{
    assert_eq!(a.ncols(), x.len(), "dimension mismatch");
    (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let (cols, vals) = a.row(i);
            let mut acc: Option<S::C> = None;
            for (&j, &v) in cols.iter().zip(vals) {
                let p = sr.mul(v, x[j as usize]);
                acc = Some(match acc {
                    None => p,
                    Some(y) => sr.add(y, p),
                });
            }
            acc
        })
        .collect()
}

/// Masked SpMV `y = m ⊙ (A·x)`: only rows listed in the (sorted) mask are
/// computed — `O(Σ_{i∈m} nnz(A(i,:)))` work regardless of `nrows`.
pub fn masked_spmv<S, MT>(
    sr: S,
    mask: &SparseVec<MT>,
    a: &CsrMatrix<S::A>,
    x: &[S::B],
) -> SparseVec<S::C>
where
    S: Semiring,
    S::C: Send,
    MT: Copy + Sync,
{
    assert_eq!(a.ncols(), x.len(), "dimension mismatch");
    assert_eq!(mask.dim(), a.nrows(), "mask dimension mismatch");
    let results: Vec<Option<S::C>> = mask
        .indices()
        .par_iter()
        .map(|&i| {
            let (cols, vals) = a.row(i as usize);
            let mut acc: Option<S::C> = None;
            for (&j, &v) in cols.iter().zip(vals) {
                let p = sr.mul(v, x[j as usize]);
                acc = Some(match acc {
                    None => p,
                    Some(y) => sr.add(y, p),
                });
            }
            acc
        })
        .collect();
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    for (&i, r) in mask.indices().iter().zip(results) {
        if let Some(v) = r {
            idx.push(i);
            vals.push(v);
        }
    }
    SparseVec::try_new(a.nrows(), idx, vals).expect("mask indices are sorted and in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlus, PlusTimes};

    fn a() -> CsrMatrix<f64> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn plain_spmv() {
        let y = spmv(PlusTimes::<f64>::new(), &a(), &[1.0, 10.0, 100.0]);
        assert_eq!(y, vec![Some(201.0), None, Some(43.0)]);
    }

    #[test]
    fn masked_spmv_computes_only_masked_rows() {
        let m = SparseVec::try_new(3, vec![1, 2], vec![(), ()]).unwrap();
        let y = masked_spmv(PlusTimes::<f64>::new(), &m, &a(), &[1.0, 10.0, 100.0]);
        // Row 1 has no entries (no output); row 2 = 3+40.
        assert_eq!(y.indices(), &[2]);
        assert_eq!(y.values(), &[43.0]);
    }

    #[test]
    fn masked_spmv_empty_mask() {
        let m = SparseVec::<()>::empty(3);
        let y = masked_spmv(PlusTimes::<f64>::new(), &m, &a(), &[1.0; 3]);
        assert!(y.is_empty());
    }

    #[test]
    fn spmv_on_tropical_semiring() {
        // One relaxation step of shortest paths: y_i = min_k (A_ik + x_k).
        let y = spmv(MinPlus::<f64>::new(), &a(), &[0.0, 0.0, 0.0]);
        assert_eq!(y, vec![Some(1.0), None, Some(3.0)]);
    }
}
