//! Doubly-Compressed Sparse Row (DCSR) — the hypersparse format of Buluç &
//! Gilbert \[10\], referenced by the paper (Sections 2.1 and 3:
//! SuiteSparse:GraphBLAS stores hypersparse matrices as DCSR/DCSC).
//!
//! When most rows are empty (`nnz ≪ nrows`), CSR's `nrows + 1` row-pointer
//! array dominates the footprint and row iteration wastes time on empties.
//! DCSR stores pointers only for the nonempty rows plus a list of their
//! row ids. Iterative algorithms whose frontier shrinks (k-truss late
//! iterations, BC frontiers) are exactly where hypersparsity appears.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::index::Idx;

/// A sparse matrix storing only its nonempty rows.
#[derive(Clone, Debug, PartialEq)]
pub struct DcsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    /// Ids of nonempty rows, strictly increasing.
    rowids: Vec<Idx>,
    /// `rowptr[k]..rowptr[k+1]` bounds row `rowids[k]`'s entries.
    rowptr: Vec<usize>,
    colidx: Vec<Idx>,
    values: Vec<T>,
}

impl<T> DcsrMatrix<T> {
    /// Number of rows (including empty ones).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Number of nonempty rows.
    #[inline]
    pub fn nnzr(&self) -> usize {
        self.rowids.len()
    }

    /// Ids of the nonempty rows, ascending.
    #[inline]
    pub fn rowids(&self) -> &[Idx] {
        &self.rowids
    }

    /// The `k`-th nonempty row: `(row id, column indices, values)`.
    #[inline]
    pub fn compressed_row(&self, k: usize) -> (Idx, &[Idx], &[T]) {
        let (s, e) = (self.rowptr[k], self.rowptr[k + 1]);
        (self.rowids[k], &self.colidx[s..e], &self.values[s..e])
    }

    /// Row `i` by id (binary search over the nonempty rows); empty slice if
    /// the row stores nothing.
    pub fn row(&self, i: usize) -> (&[Idx], &[T]) {
        match self.rowids.binary_search(&(i as Idx)) {
            Ok(k) => {
                let (_, c, v) = self.compressed_row(k);
                (c, v)
            }
            Err(_) => (&[], &[]),
        }
    }

    /// Iterate all entries as `(row, col, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, Idx, &T)> + '_ {
        (0..self.nnzr()).flat_map(move |k| {
            let (i, cols, vals) = self.compressed_row(k);
            cols.iter().zip(vals).map(move |(&j, v)| (i, j, v))
        })
    }

    /// Fraction of rows that are nonempty (hypersparse when ≪ 1).
    pub fn row_occupancy(&self) -> f64 {
        if self.nrows == 0 {
            return 0.0;
        }
        self.nnzr() as f64 / self.nrows as f64
    }
}

impl<T: Clone> DcsrMatrix<T> {
    /// Compress a CSR matrix (drops empty-row pointers).
    pub fn from_csr(a: &CsrMatrix<T>) -> Self {
        let mut rowids = Vec::new();
        let mut rowptr = vec![0usize];
        let mut colidx = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        for i in 0..a.nrows() {
            let (cols, vals) = a.row(i);
            if cols.is_empty() {
                continue;
            }
            rowids.push(i as Idx);
            colidx.extend_from_slice(cols);
            values.extend(vals.iter().cloned());
            rowptr.push(colidx.len());
        }
        DcsrMatrix {
            nrows: a.nrows(),
            ncols: a.ncols(),
            rowids,
            rowptr,
            colidx,
            values,
        }
    }

    /// Expand back to CSR.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut rowptr = vec![0usize; self.nrows + 1];
        for k in 0..self.nnzr() {
            let i = self.rowids[k] as usize;
            rowptr[i + 1] = self.rowptr[k + 1] - self.rowptr[k];
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        CsrMatrix::from_parts_unchecked(
            self.nrows,
            self.ncols,
            rowptr,
            self.colidx.clone(),
            self.values.clone(),
        )
    }

    /// Construct from raw parts with validation.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        rowids: Vec<Idx>,
        rowptr: Vec<usize>,
        colidx: Vec<Idx>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if rowptr.len() != rowids.len() + 1 {
            return Err(SparseError::RowPtrLength {
                expected: rowids.len() + 1,
                got: rowptr.len(),
            });
        }
        let mut prev: Option<Idx> = None;
        for &i in &rowids {
            if (i as usize) >= nrows {
                return Err(SparseError::IndexOutOfRange {
                    row: i as usize,
                    index: i,
                    dim: nrows,
                });
            }
            if let Some(p) = prev {
                if i <= p {
                    return Err(SparseError::UnsortedRow { row: i as usize });
                }
            }
            prev = Some(i);
        }
        crate::csr::validate_structure(rowids.len(), ncols, &rowptr, &colidx, values.len())?;
        // Nonempty-row invariant: no zero-length compressed rows.
        for k in 0..rowids.len() {
            if rowptr[k] == rowptr[k + 1] {
                return Err(SparseError::Unsupported("DCSR stores only nonempty rows"));
            }
        }
        Ok(DcsrMatrix {
            nrows,
            ncols,
            rowids,
            rowptr,
            colidx,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hypersparse() -> CsrMatrix<f64> {
        // 1000 rows, entries only in rows 3 and 997.
        let mut rowptr = vec![0usize; 1001];
        for p in rowptr.iter_mut().take(998).skip(4) {
            *p = 2;
        }
        for p in rowptr.iter_mut().skip(998) {
            *p = 3;
        }
        CsrMatrix::try_new(1000, 10, rowptr, vec![1, 5, 0], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn compression_roundtrip() {
        let a = hypersparse();
        let d = DcsrMatrix::from_csr(&a);
        assert_eq!(d.nnzr(), 2);
        assert_eq!(d.rowids(), &[3, 997]);
        assert_eq!(d.nnz(), 3);
        assert!(d.row_occupancy() < 0.01);
        assert_eq!(d.to_csr(), a);
    }

    #[test]
    fn row_access_by_id() {
        let d = DcsrMatrix::from_csr(&hypersparse());
        assert_eq!(d.row(3).0, &[1, 5]);
        assert_eq!(d.row(997).0, &[0]);
        assert_eq!(d.row(500).0.len(), 0);
    }

    #[test]
    fn iter_covers_all() {
        let d = DcsrMatrix::from_csr(&hypersparse());
        let entries: Vec<(Idx, Idx, f64)> = d.iter().map(|(i, j, &v)| (i, j, v)).collect();
        assert_eq!(entries, vec![(3, 1, 1.0), (3, 5, 2.0), (997, 0, 3.0)]);
    }

    #[test]
    fn validation_rejects_empty_compressed_rows() {
        let err = DcsrMatrix::<f64>::try_new(10, 10, vec![2, 5], vec![0, 0, 1], vec![1], vec![1.0])
            .unwrap_err();
        assert!(matches!(err, SparseError::Unsupported(_)));
    }

    #[test]
    fn validation_rejects_unsorted_rowids() {
        assert!(DcsrMatrix::<f64>::try_new(
            10,
            10,
            vec![5, 2],
            vec![0, 1, 2],
            vec![1, 1],
            vec![1.0, 1.0],
        )
        .is_err());
    }

    #[test]
    fn empty_matrix() {
        let d = DcsrMatrix::from_csr(&CsrMatrix::<f64>::empty(8, 8));
        assert_eq!(d.nnzr(), 0);
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.to_csr(), CsrMatrix::<f64>::empty(8, 8));
    }
}
