//! Parallel CSR transpose.
//!
//! Betweenness centrality transposes the adjacency (or frontier) matrix
//! between the forward and backward sweeps; the paper notes SS:GB pays this
//! cost before each masked multiply. The kernel here is the classic
//! two-pass counting transpose with a rayon-parallel counting pass.

use rayon::prelude::*;

use crate::csr::CsrMatrix;
use crate::index::Idx;

/// Transpose a CSR matrix into CSR (`O(nnz + nrows + ncols)`).
pub fn transpose<T: Copy + Send + Sync>(a: &CsrMatrix<T>) -> CsrMatrix<T> {
    let (nrows, ncols) = a.shape();
    let nnz = a.nnz();

    // Pass 1: count entries per output row (= input column), in parallel
    // over disjoint chunks with a sequential merge of the partial counts.
    let n_chunks = rayon::current_num_threads().max(1);
    let chunk = nnz.div_ceil(n_chunks.max(1)).max(1);
    let partial: Vec<Vec<usize>> = a
        .colidx()
        .par_chunks(chunk)
        .map(|ids| {
            let mut counts = vec![0usize; ncols];
            for &j in ids {
                counts[j as usize] += 1;
            }
            counts
        })
        .collect();
    let mut rowptr = vec![0usize; ncols + 1];
    for counts in &partial {
        for (j, &c) in counts.iter().enumerate() {
            rowptr[j + 1] += c;
        }
    }
    for j in 0..ncols {
        rowptr[j + 1] += rowptr[j];
    }

    // Pass 2: scatter. Sequential over input rows so each output row fills
    // in increasing input-row order, preserving the sorted invariant.
    let mut cursor = rowptr.clone();
    let mut colidx: Vec<Idx> = vec![0; nnz];
    let mut values: Vec<T> = Vec::with_capacity(nnz);
    // SAFETY-free approach: fill with first value then overwrite.
    // Simpler: collect into Vec<Option> would cost memory; instead push
    // placeholder by reading from a.values()[0] is wrong for empty.
    if nnz > 0 {
        values.resize(nnz, a.values()[0]);
    }
    for i in 0..nrows {
        let (cols, vals) = a.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            let p = cursor[j as usize];
            colidx[p] = i as Idx;
            values[p] = v;
            cursor[j as usize] += 1;
        }
    }
    CsrMatrix::from_parts_unchecked(ncols, nrows, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_small() {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let a = CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        let t = transpose(&a);
        assert_eq!(t.get(0, 0), Some(&1.0));
        assert_eq!(t.get(2, 0), Some(&2.0));
        assert_eq!(t.get(0, 2), Some(&3.0));
        assert_eq!(t.get(1, 2), Some(&4.0));
        assert_eq!(t.nnz(), 4);
    }

    #[test]
    fn transpose_rectangular() {
        let a = CsrMatrix::try_new(2, 4, vec![0, 2, 3], vec![1, 3, 0], vec![1, 2, 3]).unwrap();
        let t = transpose(&a);
        assert_eq!(t.shape(), (4, 2));
        assert_eq!(t.get(1, 0), Some(&1));
        assert_eq!(t.get(3, 0), Some(&2));
        assert_eq!(t.get(0, 1), Some(&3));
    }

    #[test]
    fn transpose_involution() {
        let a = CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn transpose_empty() {
        let a = CsrMatrix::<u8>::empty(3, 7);
        let t = transpose(&a);
        assert_eq!(t.shape(), (7, 3));
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn transpose_rows_sorted() {
        let a = CsrMatrix::try_new(
            4,
            4,
            vec![0, 2, 4, 6, 8],
            vec![1, 2, 0, 3, 0, 1, 2, 3],
            vec![1u8; 8],
        )
        .unwrap();
        let t = transpose(&a);
        for i in 0..4 {
            let (cols, _) = t.row(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {i} unsorted");
        }
    }
}
