//! Element-wise operations on sorted CSR rows.
//!
//! `ewise_mult` (pattern intersection) implements the `M ⊙ X` masking step
//! of the strawman "compute-then-mask" baseline and the k-truss edge
//! pruning; `ewise_union` implements pattern union (used by `symmetrize`).
//! Both are rayon-parallel over rows with two-pointer sorted merges per row.

use rayon::prelude::*;

use crate::csr::CsrMatrix;
use crate::index::Idx;

/// Element-wise "multiply" (intersection): the output contains entries at
/// positions present in **both** `a` and `b`, with value `f(&a_v, &b_v)`.
pub fn ewise_mult<A, B, C, F>(a: &CsrMatrix<A>, b: &CsrMatrix<B>, f: F) -> CsrMatrix<C>
where
    A: Sync,
    B: Sync,
    C: Send,
    F: Fn(&A, &B) -> C + Sync,
{
    assert_eq!(a.shape(), b.shape(), "ewise_mult shape mismatch");
    let nrows = a.nrows();
    let rows: Vec<(Vec<Idx>, Vec<C>)> = (0..nrows)
        .into_par_iter()
        .map(|i| {
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() && q < bc.len() {
                match ac[p].cmp(&bc[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        cols.push(ac[p]);
                        vals.push(f(&av[p], &bv[q]));
                        p += 1;
                        q += 1;
                    }
                }
            }
            (cols, vals)
        })
        .collect();
    assemble_rows(nrows, a.ncols(), rows)
}

/// Element-wise union: entries present in either input. `both` combines
/// values present in both, `only_a`/`only_b` map single-sided values.
pub fn ewise_union<A, B, C, FB, FA, FB2>(
    a: &CsrMatrix<A>,
    b: &CsrMatrix<B>,
    both: FB,
    only_a: FA,
    only_b: FB2,
) -> CsrMatrix<C>
where
    A: Sync,
    B: Sync,
    C: Send,
    FB: Fn(&A, &B) -> C + Sync,
    FA: Fn(&A) -> C + Sync,
    FB2: Fn(&B) -> C + Sync,
{
    assert_eq!(a.shape(), b.shape(), "ewise_union shape mismatch");
    let nrows = a.nrows();
    let rows: Vec<(Vec<Idx>, Vec<C>)> = (0..nrows)
        .into_par_iter()
        .map(|i| {
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let mut cols = Vec::with_capacity(ac.len() + bc.len());
            let mut vals = Vec::with_capacity(ac.len() + bc.len());
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() || q < bc.len() {
                if q >= bc.len() || (p < ac.len() && ac[p] < bc[q]) {
                    cols.push(ac[p]);
                    vals.push(only_a(&av[p]));
                    p += 1;
                } else if p >= ac.len() || bc[q] < ac[p] {
                    cols.push(bc[q]);
                    vals.push(only_b(&bv[q]));
                    q += 1;
                } else {
                    cols.push(ac[p]);
                    vals.push(both(&av[p], &bv[q]));
                    p += 1;
                    q += 1;
                }
            }
            (cols, vals)
        })
        .collect();
    assemble_rows(nrows, a.ncols(), rows)
}

/// Keep entries of `a` at positions **not** present in `b` (set difference).
pub fn ewise_difference<A: Clone + Sync + Send, B: Sync>(
    a: &CsrMatrix<A>,
    b: &CsrMatrix<B>,
) -> CsrMatrix<A> {
    assert_eq!(a.shape(), b.shape(), "ewise_difference shape mismatch");
    let nrows = a.nrows();
    let rows: Vec<(Vec<Idx>, Vec<A>)> = (0..nrows)
        .into_par_iter()
        .map(|i| {
            let (ac, av) = a.row(i);
            let (bc, _) = b.row(i);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            let mut q = 0usize;
            for (p, &j) in ac.iter().enumerate() {
                while q < bc.len() && bc[q] < j {
                    q += 1;
                }
                if q >= bc.len() || bc[q] != j {
                    cols.push(j);
                    vals.push(av[p].clone());
                }
            }
            (cols, vals)
        })
        .collect();
    assemble_rows(nrows, a.ncols(), rows)
}

/// Assemble per-row `(cols, vals)` pairs into a CSR matrix. Rows must be
/// sorted and in-range; exposed for row-producing kernels in other crates.
pub fn assemble_rows<C>(nrows: usize, ncols: usize, rows: Vec<(Vec<Idx>, Vec<C>)>) -> CsrMatrix<C> {
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let total: usize = rows.iter().map(|(c, _)| c.len()).sum();
    let mut colidx = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    for (cols, vals) in rows {
        colidx.extend_from_slice(&cols);
        values.extend(vals);
        rowptr.push(colidx.len());
    }
    CsrMatrix::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> CsrMatrix<i32> {
        // [1 2 0 0]
        // [0 3 0 4]
        CsrMatrix::try_new(2, 4, vec![0, 2, 4], vec![0, 1, 1, 3], vec![1, 2, 3, 4]).unwrap()
    }

    fn b() -> CsrMatrix<i32> {
        // [0 5 6 0]
        // [7 3 0 0]
        CsrMatrix::try_new(2, 4, vec![0, 2, 4], vec![1, 2, 0, 1], vec![5, 6, 7, 3]).unwrap()
    }

    #[test]
    fn mult_intersects() {
        let c = ewise_mult(&a(), &b(), |x, y| x * y);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 1), Some(&10));
        assert_eq!(c.get(1, 1), Some(&9));
    }

    #[test]
    fn union_merges() {
        let c = ewise_union(&a(), &b(), |x, y| x + y, |x| *x, |y| *y);
        assert_eq!(c.nnz(), 6);
        assert_eq!(c.get(0, 0), Some(&1));
        assert_eq!(c.get(0, 1), Some(&7));
        assert_eq!(c.get(0, 2), Some(&6));
        assert_eq!(c.get(1, 0), Some(&7));
        assert_eq!(c.get(1, 3), Some(&4));
        // output rows sorted
        for i in 0..2 {
            let (cols, _) = c.row(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn difference_removes() {
        let c = ewise_difference(&a(), &b());
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 0), Some(&1));
        assert_eq!(c.get(1, 3), Some(&4));
    }

    #[test]
    fn mult_with_empty_is_empty() {
        let e = CsrMatrix::<i32>::empty(2, 4);
        assert_eq!(ewise_mult(&a(), &e, |x, y| x * y).nnz(), 0);
        assert_eq!(ewise_difference(&a(), &e), a());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mult_shape_mismatch_panics() {
        let e = CsrMatrix::<i32>::empty(3, 4);
        ewise_mult(&a(), &e, |x, y| x * y);
    }
}
