//! Triangular extraction.
//!
//! Triangle counting (Section 8.2) operates on the strictly lower-triangular
//! part `L` of the (degree-relabeled) adjacency matrix, counting
//! `sum(L .* (L·L))`.

use crate::csr::CsrMatrix;
use crate::index::Idx;

/// Strictly lower-triangular part: entries with `col < row`.
pub fn tril<T: Clone>(a: &CsrMatrix<T>) -> CsrMatrix<T> {
    a.filter(|i, j, _| (j as usize) < i)
}

/// Lower-triangular part including the diagonal: entries with `col <= row`.
pub fn tril_diag<T: Clone>(a: &CsrMatrix<T>) -> CsrMatrix<T> {
    a.filter(|i, j, _| (j as usize) <= i)
}

/// Strictly upper-triangular part: entries with `col > row`.
pub fn triu<T: Clone>(a: &CsrMatrix<T>) -> CsrMatrix<T> {
    a.filter(|i, j, _| (j as usize) > i)
}

/// Remove diagonal entries.
pub fn remove_diagonal<T: Clone>(a: &CsrMatrix<T>) -> CsrMatrix<T> {
    a.filter(|i, j, _| (j as usize) != i)
}

/// True if the pattern is symmetric (`A(i,j)` stored iff `A(j,i)` stored).
pub fn is_pattern_symmetric<T>(a: &CsrMatrix<T>) -> bool {
    if a.nrows() != a.ncols() {
        return false;
    }
    for i in 0..a.nrows() {
        let (cols, _) = a.row(i);
        for &j in cols {
            if a.get(j as usize, i as Idx).is_none() {
                return false;
            }
        }
    }
    true
}

/// Symmetrize a pattern: `A ∪ Aᵀ` (values from `A` where present, otherwise
/// from `Aᵀ`). Used to turn directed generator output into undirected graphs.
pub fn symmetrize<T: Copy + Send + Sync>(a: &CsrMatrix<T>) -> CsrMatrix<T> {
    let t = crate::transpose::transpose(a);
    crate::ewise::ewise_union(a, &t, |x, _| *x, |x| *x, |y| *y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> CsrMatrix<i32> {
        // [1 2 0]
        // [3 4 5]
        // [0 6 7]
        CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![1, 2, 3, 4, 5, 6, 7],
        )
        .unwrap()
    }

    #[test]
    fn tril_strict() {
        let l = tril(&square());
        assert_eq!(l.nnz(), 2);
        assert_eq!(l.get(1, 0), Some(&3));
        assert_eq!(l.get(2, 1), Some(&6));
    }

    #[test]
    fn tril_with_diag() {
        let l = tril_diag(&square());
        assert_eq!(l.nnz(), 5);
        assert_eq!(l.get(0, 0), Some(&1));
        assert_eq!(l.get(2, 2), Some(&7));
    }

    #[test]
    fn triu_strict() {
        let u = triu(&square());
        assert_eq!(u.nnz(), 2);
        assert_eq!(u.get(0, 1), Some(&2));
        assert_eq!(u.get(1, 2), Some(&5));
    }

    #[test]
    fn diag_removal() {
        let d = remove_diagonal(&square());
        assert_eq!(d.nnz(), 4);
        assert_eq!(d.get(1, 1), None);
    }

    #[test]
    fn tril_triu_diag_partition() {
        let a = square();
        assert_eq!(
            tril(&a).nnz() + triu(&a).nnz() + (a.nnz() - remove_diagonal(&a).nnz()),
            a.nnz()
        );
    }

    #[test]
    fn symmetry_check() {
        // Directed: edge (0,1) without (1,0).
        let a = CsrMatrix::try_new(2, 2, vec![0, 1, 1], vec![1], vec![9]).unwrap();
        assert!(!is_pattern_symmetric(&a));
        let s = symmetrize(&a);
        assert!(is_pattern_symmetric(&s));
        // Union keeps the original value where present and fills the
        // transposed position from Aᵀ.
        assert_eq!(s.get(0, 1), Some(&9));
        assert_eq!(s.get(1, 0), Some(&9));
    }

    #[test]
    fn square_pattern_is_symmetric() {
        assert!(is_pattern_symmetric(&square()));
        assert!(!is_pattern_symmetric(&CsrMatrix::<i32>::empty(2, 3)));
    }
}
