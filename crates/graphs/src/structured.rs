//! Structured generators: 2-D grids, ring lattices, and preferential
//! attachment. Together with Erdős-Rényi and R-MAT these span the axes of
//! the SuiteSparse suite the paper evaluates on — locality (grids,
//! lattices), skew (preferential attachment), and randomness (ER).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse::{CooMatrix, CsrMatrix, Idx};

/// 5-point-stencil 2-D grid graph on `rows × cols` vertices
/// (4-neighborhood, undirected, no self loops). Models mesh-like matrices
/// with strong locality and bounded degree.
pub fn grid2d(rows: usize, cols: usize) -> CsrMatrix<f64> {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as Idx;
    let mut coo = CooMatrix::new(n, n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                coo.push(id(r, c), id(r, c + 1), 1.0);
                coo.push(id(r, c + 1), id(r, c), 1.0);
            }
            if r + 1 < rows {
                coo.push(id(r, c), id(r + 1, c), 1.0);
                coo.push(id(r + 1, c), id(r, c), 1.0);
            }
        }
    }
    coo.to_csr()
}

/// Ring lattice: every vertex connects to its `k` nearest neighbors on each
/// side (undirected). Small-world substrate with uniform degree `2k`.
pub fn ring_lattice(n: usize, k: usize) -> CsrMatrix<f64> {
    assert!(2 * k < n, "ring lattice requires 2k < n");
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        for d in 1..=k {
            let j = (i + d) % n;
            coo.push(i as Idx, j as Idx, 1.0);
            coo.push(j as Idx, i as Idx, 1.0);
        }
    }
    coo.to_csr_with(|a, _| *a)
}

/// Barabási-Albert-style preferential attachment: each new vertex attaches
/// `m` edges to existing vertices chosen proportionally to their current
/// degree. Produces the heavy-tailed degree distributions typical of web
/// and social graphs. Undirected, deterministic in `seed`.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> CsrMatrix<f64> {
    assert!(n > m && m >= 1, "need n > m >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    // Repeated-endpoint list trick: picking a uniform element of `targets`
    // is degree-proportional sampling.
    let mut targets: Vec<Idx> = Vec::with_capacity(2 * n * m);
    let mut coo = CooMatrix::new(n, n);
    // Seed clique over the first m+1 vertices.
    for i in 0..=m {
        for j in 0..i {
            coo.push(i as Idx, j as Idx, 1.0);
            coo.push(j as Idx, i as Idx, 1.0);
            targets.push(i as Idx);
            targets.push(j as Idx);
        }
    }
    for v in (m + 1)..n {
        let mut chosen: Vec<Idx> = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != v as Idx && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            coo.push(v as Idx, t, 1.0);
            coo.push(t, v as Idx, 1.0);
            targets.push(v as Idx);
            targets.push(t);
        }
    }
    coo.to_csr_with(|a, _| *a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::triangular::is_pattern_symmetric;

    #[test]
    fn grid_degrees() {
        let g = grid2d(3, 4);
        assert_eq!(g.shape(), (12, 12));
        assert!(is_pattern_symmetric(&g));
        // Corner has degree 2, interior degree 4.
        assert_eq!(g.row_nnz(0), 2);
        assert_eq!(g.row_nnz(5), 4); // (1,1) interior
                                     // Edge count: 2*(3*3 + 2*4) = ... horizontal 3*3=9, vertical 2*4=8 -> 17 edges -> 34 nnz
        assert_eq!(g.nnz(), 34);
    }

    #[test]
    fn ring_uniform_degree() {
        let g = ring_lattice(10, 2);
        assert!(is_pattern_symmetric(&g));
        for i in 0..10 {
            assert_eq!(g.row_nnz(i), 4, "vertex {i}");
        }
    }

    #[test]
    #[should_panic(expected = "2k < n")]
    fn ring_rejects_overfull() {
        ring_lattice(4, 2);
    }

    #[test]
    fn pa_heavy_tail_and_symmetric() {
        let g = preferential_attachment(500, 3, 11);
        assert!(is_pattern_symmetric(&g));
        let max = (0..500).map(|i| g.row_nnz(i)).max().unwrap();
        let avg = g.nnz() as f64 / 500.0;
        assert!(max as f64 > 3.0 * avg, "max {max} avg {avg}");
        // Determinism.
        assert_eq!(g, preferential_attachment(500, 3, 11));
    }

    #[test]
    fn pa_no_self_loops() {
        let g = preferential_attachment(100, 2, 5);
        for i in 0..100 {
            assert!(g.get(i, i as Idx).is_none(), "self loop at {i}");
        }
    }
}
