//! Degree statistics for characterizing generated graphs (used by the
//! `table02_suite` harness and when validating that the synthetic suite
//! spans the intended skew axes).

use sparse::CsrMatrix;

/// Summary statistics of a degree sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// 99th-percentile degree (nearest-rank).
    pub p99: usize,
    /// `max / mean` — a quick skew indicator (≈1 for regular graphs,
    /// ≫1 for power laws).
    pub skew: f64,
}

/// Compute degree statistics over the rows of a square graph matrix.
pub fn degree_stats<T>(a: &CsrMatrix<T>) -> DegreeStats {
    let n = a.nrows();
    assert!(n > 0, "empty graph");
    let mut degs: Vec<usize> = (0..n).map(|i| a.row_nnz(i)).collect();
    degs.sort_unstable();
    let mean = a.nnz() as f64 / n as f64;
    let nearest_rank = |q: f64| degs[(((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)];
    DegreeStats {
        min: degs[0],
        max: degs[n - 1],
        mean,
        median: nearest_rank(0.5),
        p99: nearest_rank(0.99),
        skew: if mean > 0.0 {
            degs[n - 1] as f64 / mean
        } else {
            0.0
        },
    }
}

/// Log-binned degree histogram: `(lower_bound, count)` per power-of-two bin
/// (bin `k` covers degrees `[2^k, 2^(k+1))`; degree 0 has its own bin
/// reported as lower bound 0).
pub fn degree_histogram<T>(a: &CsrMatrix<T>) -> Vec<(usize, usize)> {
    let mut bins: Vec<usize> = Vec::new();
    let mut zeros = 0usize;
    for i in 0..a.nrows() {
        let d = a.row_nnz(i);
        if d == 0 {
            zeros += 1;
            continue;
        }
        let k = usize::BITS as usize - 1 - d.leading_zeros() as usize;
        if bins.len() <= k {
            bins.resize(k + 1, 0);
        }
        bins[k] += 1;
    }
    let mut out = Vec::new();
    if zeros > 0 {
        out.push((0, zeros));
    }
    for (k, &c) in bins.iter().enumerate() {
        if c > 0 {
            out.push((1 << k, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erdos_renyi::erdos_renyi;
    use crate::rmat::{rmat, RmatParams};
    use crate::structured::ring_lattice;

    #[test]
    fn regular_graph_has_no_skew() {
        let g = ring_lattice(64, 3);
        let s = degree_stats(&g);
        assert_eq!(s.min, 6);
        assert_eq!(s.max, 6);
        assert_eq!(s.median, 6);
        assert!((s.skew - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rmat_skew_exceeds_er_skew() {
        let er = erdos_renyi(1 << 10, 16.0, 1);
        let rm = rmat(10, RmatParams::default(), 1);
        let s_er = degree_stats(&er);
        let s_rm = degree_stats(&rm);
        assert!(
            s_rm.skew > 2.0 * s_er.skew,
            "rmat skew {} vs er skew {}",
            s_rm.skew,
            s_er.skew
        );
        assert!(s_rm.p99 > s_rm.median);
    }

    #[test]
    fn histogram_partitions_vertices() {
        let g = rmat(9, RmatParams::default(), 2);
        let h = degree_histogram(&g);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.nrows());
        // Bins sorted by lower bound.
        assert!(h.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn histogram_zero_bin() {
        let g = sparse::CsrMatrix::<f64>::empty(5, 5);
        assert_eq!(degree_histogram(&g), vec![(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn stats_reject_zero_rows() {
        let g = sparse::CsrMatrix::<f64>::empty(0, 0);
        let _ = degree_stats(&g);
    }
}
