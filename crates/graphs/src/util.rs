//! Graph matrix utilities shared by the benchmarks.

use sparse::degree::degree_sort_perm;
use sparse::permute::permute_symmetric;
use sparse::triangular::{remove_diagonal, symmetrize};
use sparse::CsrMatrix;

/// Turn an arbitrary square matrix into a simple undirected graph:
/// symmetrize the pattern, drop self loops, set all values to 1.0.
pub fn to_undirected_simple(a: &CsrMatrix<f64>) -> CsrMatrix<f64> {
    let sym = symmetrize(a);
    remove_diagonal(&sym).map(|_| 1.0)
}

/// Relabel vertices in non-increasing degree order (paper Section 8.2,
/// required for the `sum(L .* L²)` triangle-counting formulation to be
/// fast). Returns the permuted matrix.
pub fn relabel_by_degree(a: &CsrMatrix<f64>) -> CsrMatrix<f64> {
    let perm = degree_sort_perm(a);
    permute_symmetric(a, &perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::{rmat, RmatParams};
    use sparse::triangular::is_pattern_symmetric;
    use sparse::Idx;

    #[test]
    fn undirected_simple_properties() {
        let a = rmat(7, RmatParams::default(), 3);
        let u = to_undirected_simple(&a);
        assert!(is_pattern_symmetric(&u));
        for i in 0..u.nrows() {
            assert!(u.get(i, i as Idx).is_none());
        }
        assert!(u.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn relabel_sorts_degrees() {
        let a = to_undirected_simple(&rmat(7, RmatParams::default(), 4));
        let r = relabel_by_degree(&a);
        assert_eq!(r.nnz(), a.nnz());
        let degs: Vec<usize> = (0..r.nrows()).map(|i| r.row_nnz(i)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "not non-increasing");
    }
}
