//! The 26-graph evaluation suite.
//!
//! Stand-in for the 26 SuiteSparse real-world matrices used by the paper
//! (the set of Nagasaka et al., Table 2), which cannot be downloaded in
//! this offline environment. The substitute spans the axes that drive
//! algorithm behaviour in the paper's performance profiles: size, average
//! degree, degree skew, and structure. Every graph is deterministic, so
//! performance profiles are reproducible run-to-run.

use sparse::CsrMatrix;

use crate::erdos_renyi::erdos_renyi;
use crate::rmat::{rmat, RmatParams};
use crate::structured::{grid2d, preferential_attachment, ring_lattice};
use crate::util::to_undirected_simple;

/// How a suite graph is generated.
#[derive(Copy, Clone, Debug)]
pub enum SuiteSpec {
    /// Erdős-Rényi with `(log2 n, degree)`.
    Er(u32, f64),
    /// R-MAT with `(scale, edge_factor)`.
    Rmat(u32, usize),
    /// 2-D grid with `(rows, cols)`.
    Grid(usize, usize),
    /// Ring lattice with `(n, k)`.
    Ring(usize, usize),
    /// Preferential attachment with `(n, m)`.
    Pa(usize, usize),
}

/// A named graph in the evaluation suite.
#[derive(Clone, Debug)]
pub struct SuiteGraph {
    /// Short name used in result tables (mimics SuiteSparse naming).
    pub name: &'static str,
    /// Generation recipe.
    pub spec: SuiteSpec,
}

impl SuiteGraph {
    /// Materialize the graph as a simple undirected matrix
    /// (symmetric pattern, no self loops, unit values).
    pub fn build(&self) -> CsrMatrix<f64> {
        let seed = fxhash(self.name);
        let raw = match self.spec {
            SuiteSpec::Er(lg, d) => erdos_renyi(1 << lg, d, seed),
            SuiteSpec::Rmat(scale, ef) => rmat(
                scale,
                RmatParams {
                    edge_factor: ef,
                    ..Default::default()
                },
                seed,
            ),
            SuiteSpec::Grid(r, c) => grid2d(r, c),
            SuiteSpec::Ring(n, k) => ring_lattice(n, k),
            SuiteSpec::Pa(n, m) => preferential_attachment(n, m, seed),
        };
        to_undirected_simple(&raw)
    }

    /// Number of vertices without materializing the graph.
    pub fn nvertices(&self) -> usize {
        match self.spec {
            SuiteSpec::Er(lg, _) => 1 << lg,
            SuiteSpec::Rmat(scale, _) => 1 << scale,
            SuiteSpec::Grid(r, c) => r * c,
            SuiteSpec::Ring(n, _) | SuiteSpec::Pa(n, _) => n,
        }
    }
}

/// Simple FNV-style hash of the name, used as the generation seed so each
/// suite member gets an independent deterministic stream.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The full 26-graph suite (see module docs). Input nonzero counts range
/// from ~4K to ~8M after symmetrization, scaled to fit a laptop-class
/// machine while preserving >3 orders of magnitude of spread like the
/// paper's 350K-100M range.
pub fn suite() -> Vec<SuiteGraph> {
    use SuiteSpec::*;
    vec![
        // Random, uniform degree (9): the "er_*" family.
        SuiteGraph {
            name: "er10_d4",
            spec: Er(10, 4.0),
        },
        SuiteGraph {
            name: "er10_d16",
            spec: Er(10, 16.0),
        },
        SuiteGraph {
            name: "er10_d64",
            spec: Er(10, 64.0),
        },
        SuiteGraph {
            name: "er12_d4",
            spec: Er(12, 4.0),
        },
        SuiteGraph {
            name: "er12_d16",
            spec: Er(12, 16.0),
        },
        SuiteGraph {
            name: "er12_d64",
            spec: Er(12, 64.0),
        },
        SuiteGraph {
            name: "er14_d4",
            spec: Er(14, 4.0),
        },
        SuiteGraph {
            name: "er14_d16",
            spec: Er(14, 16.0),
        },
        SuiteGraph {
            name: "er14_d64",
            spec: Er(14, 64.0),
        },
        // Skewed power-law (6): the "rmat_*" family (web/social analogue).
        SuiteGraph {
            name: "rmat10_e8",
            spec: Rmat(10, 8),
        },
        SuiteGraph {
            name: "rmat10_e16",
            spec: Rmat(10, 16),
        },
        SuiteGraph {
            name: "rmat12_e8",
            spec: Rmat(12, 8),
        },
        SuiteGraph {
            name: "rmat12_e16",
            spec: Rmat(12, 16),
        },
        SuiteGraph {
            name: "rmat14_e8",
            spec: Rmat(14, 8),
        },
        SuiteGraph {
            name: "rmat14_e16",
            spec: Rmat(14, 16),
        },
        // Meshes (3): locality, bounded degree (FEM analogue).
        SuiteGraph {
            name: "grid32",
            spec: Grid(32, 32),
        },
        SuiteGraph {
            name: "grid128",
            spec: Grid(128, 128),
        },
        SuiteGraph {
            name: "grid256",
            spec: Grid(256, 256),
        },
        // Ring lattices (2): uniform degree, high clustering.
        SuiteGraph {
            name: "ring4k_k4",
            spec: Ring(1 << 12, 4),
        },
        SuiteGraph {
            name: "ring16k_k8",
            spec: Ring(1 << 14, 8),
        },
        // Preferential attachment (6): heavy tail (citation/social analogue).
        SuiteGraph {
            name: "pa1k_m2",
            spec: Pa(1 << 10, 2),
        },
        SuiteGraph {
            name: "pa1k_m8",
            spec: Pa(1 << 10, 8),
        },
        SuiteGraph {
            name: "pa4k_m2",
            spec: Pa(1 << 12, 2),
        },
        SuiteGraph {
            name: "pa4k_m8",
            spec: Pa(1 << 12, 8),
        },
        SuiteGraph {
            name: "pa16k_m2",
            spec: Pa(1 << 14, 2),
        },
        SuiteGraph {
            name: "pa16k_m8",
            spec: Pa(1 << 14, 8),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::triangular::is_pattern_symmetric;

    #[test]
    fn suite_has_26_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 26);
        let mut names: Vec<&str> = s.iter().map(|g| g.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn small_members_build_valid_graphs() {
        for g in suite().iter().filter(|g| g.nvertices() <= 1 << 10) {
            let m = g.build();
            assert_eq!(m.nrows(), g.nvertices(), "{}", g.name);
            assert!(is_pattern_symmetric(&m), "{} not symmetric", g.name);
            assert!(m.nnz() > 0, "{} empty", g.name);
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let g = &suite()[0];
        assert_eq!(g.build(), g.build());
    }
}
