//! R-MAT recursive matrix generator (Chakrabarti et al.), with the
//! Graph500 parameter set `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)` used by
//! the paper's scaling experiments (Figures 10, 11, 14, 15).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use sparse::{CooMatrix, CsrMatrix, Idx};

/// R-MAT quadrant probabilities.
#[derive(Copy, Clone, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Edges per vertex (Graph500 edge factor, default 16).
    pub edge_factor: usize,
    /// Noise added per recursion level to smooth the degree distribution,
    /// as in the Graph500 reference implementation. 0.0 disables.
    pub noise: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            edge_factor: 16,
            noise: 0.0,
        }
    }
}

impl RmatParams {
    /// The implied bottom-right probability `d = 1 − a − b − c`.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generate a `2^scale × 2^scale` R-MAT matrix with
/// `edge_factor · 2^scale` sampled edges (duplicates combined, so the
/// stored nnz is somewhat lower, as with Graph500 graphs).
///
/// Values count edge multiplicity as f64. Deterministic in `seed` and
/// independent of thread count (edges are sampled in per-chunk RNG streams).
pub fn rmat(scale: u32, params: RmatParams, seed: u64) -> CsrMatrix<f64> {
    let n = 1usize << scale;
    let nedges = params.edge_factor * n;
    let nchunks = rayon::current_num_threads().max(1) * 4;
    let chunk = nedges.div_ceil(nchunks).max(1);
    let starts: Vec<usize> = (0..nedges).step_by(chunk).collect();
    let edges: Vec<Vec<(Idx, Idx)>> = starts
        .par_iter()
        .map(|&start| {
            let m = chunk.min(nedges - start);
            let mut rng =
                StdRng::seed_from_u64(seed ^ (start as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
            (0..m)
                .map(|_| sample_edge(scale, &params, &mut rng))
                .collect()
        })
        .collect();
    let mut coo = CooMatrix::new(n, n);
    coo.reserve(nedges);
    for chunk_edges in edges {
        for (i, j) in chunk_edges {
            coo.push(i, j, 1.0f64);
        }
    }
    coo.to_csr_with(|x, y| x + y)
}

fn sample_edge(scale: u32, p: &RmatParams, rng: &mut StdRng) -> (Idx, Idx) {
    let (mut i, mut j) = (0u64, 0u64);
    let (mut a, mut b, mut c) = (p.a, p.b, p.c);
    for _ in 0..scale {
        let (ca, cb, cc) = if p.noise > 0.0 {
            // Multiplicative noise per level (Graph500 style).
            let na = a * (1.0 + p.noise * (rng.gen::<f64>() - 0.5));
            let nb = b * (1.0 + p.noise * (rng.gen::<f64>() - 0.5));
            let nc = c * (1.0 + p.noise * (rng.gen::<f64>() - 0.5));
            let nd = (1.0 - a - b - c) * (1.0 + p.noise * (rng.gen::<f64>() - 0.5));
            let s = na + nb + nc + nd;
            (na / s, nb / s, nc / s)
        } else {
            (a, b, c)
        };
        let r: f64 = rng.gen();
        i <<= 1;
        j <<= 1;
        if r < ca {
            // top-left
        } else if r < ca + cb {
            j |= 1;
        } else if r < ca + cb + cc {
            i |= 1;
        } else {
            i |= 1;
            j |= 1;
        }
        let _ = (&mut a, &mut b, &mut c);
    }
    (i as Idx, j as Idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = rmat(8, RmatParams::default(), 5);
        let b = rmat(8, RmatParams::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn dims_and_edge_budget() {
        let scale = 9;
        let a = rmat(scale, RmatParams::default(), 1);
        let n = 1usize << scale;
        assert_eq!(a.shape(), (n, n));
        // Sampled edges = 16n; stored nnz lower due to duplicates but
        // total multiplicity preserved.
        let total: f64 = a.values().iter().sum();
        assert_eq!(total as usize, 16 * n);
        assert!(a.nnz() <= 16 * n);
        assert!(a.nnz() > 8 * n, "too many duplicates: {}", a.nnz());
    }

    #[test]
    fn skewed_degrees() {
        // R-MAT with Graph500 parameters concentrates edges: the max
        // row degree should far exceed the average.
        let a = rmat(10, RmatParams::default(), 2);
        let n = 1usize << 10;
        let avg = a.nnz() as f64 / n as f64;
        let max = (0..n).map(|i| a.row_nnz(i)).max().unwrap();
        assert!(
            max as f64 > 4.0 * avg,
            "max degree {max} vs avg {avg} not skewed"
        );
    }

    #[test]
    fn params_d_complement() {
        let p = RmatParams::default();
        assert!((p.d() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn noise_variant_still_valid() {
        let p = RmatParams {
            noise: 0.1,
            ..Default::default()
        };
        let a = rmat(7, p, 9);
        assert_eq!(a.shape(), (128, 128));
        assert!(a.nnz() > 0);
    }
}
