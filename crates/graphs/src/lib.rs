#![warn(missing_docs)]

//! Synthetic graph generators for the evaluation (Section 7).
//!
//! The paper's controlled experiments use Erdős-Rényi graphs and R-MAT
//! graphs with Graph500 parameters; its real-world experiments use 26
//! SuiteSparse matrices. The SuiteSparse collection is not available in
//! this offline reproduction, so [`mod@suite`] provides a deterministic
//! 26-graph synthetic substitute spanning the same axes (size, density,
//! degree skew, structure) — see DESIGN.md, substitution 1.
//!
//! All generators are seeded and deterministic.

pub mod erdos_renyi;
pub mod rmat;
pub mod stats;
pub mod structured;
pub mod suite;
pub mod util;

pub use erdos_renyi::erdos_renyi;
pub use rmat::{rmat, RmatParams};
pub use structured::{grid2d, preferential_attachment, ring_lattice};
pub use suite::{suite, SuiteGraph};
pub use util::{relabel_by_degree, to_undirected_simple};
