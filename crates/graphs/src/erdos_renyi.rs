//! Erdős-Rényi `G(n, d/n)` generator.
//!
//! Used by the density sweep of Figure 7: matrices and masks with a chosen
//! expected degree and no structure. Edges are sampled per row by skipping
//! geometrically through the column range, so generation is `O(nnz)` and
//! trivially row-parallel.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use sparse::{CsrMatrix, Idx};

/// Directed Erdős-Rényi matrix: each of the `n × n` positions holds an
/// entry independently with probability `degree / n`, values 1.0.
///
/// `degree > n` is clamped to a full matrix. Deterministic in `seed`
/// (each row derives its own RNG, so results do not depend on thread
/// count or scheduling).
pub fn erdos_renyi(n: usize, degree: f64, seed: u64) -> CsrMatrix<f64> {
    assert!(n > 0, "empty graph");
    let p = (degree / n as f64).min(1.0);
    if p <= 0.0 {
        return CsrMatrix::empty(n, n);
    }
    let rows: Vec<Vec<Idx>> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut cols = Vec::new();
            if p >= 1.0 {
                cols.extend(0..n as Idx);
                return cols;
            }
            // Geometric skipping: next gap ~ Geom(p).
            let log1mp = (1.0 - p).ln();
            let mut j = -1.0f64;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                j += 1.0 + (u.ln() / log1mp).floor();
                if j >= n as f64 {
                    break;
                }
                cols.push(j as Idx);
            }
            cols
        })
        .collect();
    let mut rowptr = Vec::with_capacity(n + 1);
    rowptr.push(0usize);
    let total: usize = rows.iter().map(|r| r.len()).sum();
    let mut colidx = Vec::with_capacity(total);
    for r in rows {
        colidx.extend_from_slice(&r);
        rowptr.push(colidx.len());
    }
    let values = vec![1.0f64; colidx.len()];
    CsrMatrix::from_parts_unchecked(n, n, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = erdos_renyi(100, 8.0, 42);
        let b = erdos_renyi(100, 8.0, 42);
        assert_eq!(a, b);
        let c = erdos_renyi(100, 8.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn expected_degree_roughly_met() {
        let n = 2000;
        let a = erdos_renyi(n, 16.0, 7);
        let avg = a.nnz() as f64 / n as f64;
        assert!(
            (avg - 16.0).abs() < 1.5,
            "average degree {avg} too far from 16"
        );
    }

    #[test]
    fn rows_sorted_and_in_range() {
        let a = erdos_renyi(200, 5.0, 1);
        for i in 0..200 {
            let (cols, _) = a.row(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
            assert!(cols.iter().all(|&j| (j as usize) < 200));
        }
    }

    #[test]
    fn degree_zero_empty() {
        assert_eq!(erdos_renyi(50, 0.0, 3).nnz(), 0);
    }

    #[test]
    fn degree_above_n_full() {
        let a = erdos_renyi(10, 100.0, 3);
        assert_eq!(a.nnz(), 100);
    }
}
